// Command ivliw-served is the sweep-as-a-service daemon: a long-running
// HTTP/JSON server (package ivliw/sweep/serve) that accepts sweep.Spec
// submissions, executes them through sweep.Coordinate, and makes two
// identical submissions cost one execution — the job ID is the spec's
// semantic hash (sweep.Spec.Hash; predict it offline with
// `ivliw-bench -spec-hash`).
//
// Usage:
//
//	ivliw-served -dir DIR [-addr 127.0.0.1:8372] [-addr-file FILE]
//	             [-executors 2] [-queue 64] [-max-body 1048576]
//	             [-shards 1] [-attempts 3]
//	             [-launch inproc|exec|pool] [-worker-bin ivliw-bench]
//	             [-pool-workers 2] [-pool-slots 1] [-pool-stale 2s]
//	             [-workers N] [-sim-batch K] [-retry-after 1s]
//
// The API (all JSON):
//
//	POST /v1/jobs            submit a spec file's bytes; 202 queued,
//	                         200 dedup (an identical job is in flight or
//	                         done), 409 output-path collision, 503 +
//	                         Retry-After on a full queue or during drain
//	GET  /v1/jobs            list jobs
//	GET  /v1/jobs/{job}      status + coordinator stats + attempt history
//	GET  /v1/jobs/{job}/rows stream result rows as JSONL — byte-identical
//	                         to `ivliw-bench -spec <spec>` run unsharded
//	GET  /v1/stats           server counters (dedup hits, executions, ...)
//
// -dir is the durable root: per-job directories (spec, state record,
// committed rows, coordinator manifest) and the shared content-addressed
// artifact store live there. Restarting the daemon over the same -dir
// resumes: done jobs serve their rows from disk with zero executions, and
// jobs interrupted mid-run re-enter the queue and resume completed shards
// from their coordinator manifests.
//
// -launch selects where shard attempts run: inproc (goroutines), exec
// (worker subprocesses of -worker-bin, the `ivliw-bench -spec` protocol),
// or pool (a health-checked sweep.Pool of -pool-workers subprocess workers
// with heartbeat monitoring). -shards cuts each job into that many shard
// runs; any value produces byte-identical rows.
//
// SIGINT/SIGTERM shut down gracefully: in-flight HTTP requests finish,
// running jobs tear down through context cancellation (staged outputs
// discarded, manifests intact) and are persisted back to queued, and new
// submissions are rejected with 503 + Retry-After. Exit status 0.
//
// -addr-file, when set, receives the actually bound address after listen —
// the rendezvous scripts use with -addr 127.0.0.1:0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ivliw/internal/atomicio"
	"ivliw/sweep"
	"ivliw/sweep/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ivliw-served: ")

	addr := flag.String("addr", "127.0.0.1:8372", "listen address (port 0 picks a free port; see -addr-file)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file after listen (atomic)")
	dir := flag.String("dir", "", "durable service root for job state, results and the artifact store (required)")
	executors := flag.Int("executors", 2, "concurrent job executions")
	queue := flag.Int("queue", 64, "bounded submission backlog beyond running jobs")
	maxBody := flag.Int64("max-body", 1<<20, "maximum spec body bytes")
	shards := flag.Int("shards", 1, "coordinator shards per job")
	attempts := flag.Int("attempts", 3, "launch attempts per shard")
	launch := flag.String("launch", "inproc", "shard launcher: inproc, exec or pool")
	workerBin := flag.String("worker-bin", "", "worker binary for -launch exec|pool (the ivliw-bench -spec protocol)")
	poolWorkers := flag.Int("pool-workers", 2, "pool launcher: worker count")
	poolSlots := flag.Int("pool-slots", 1, "pool launcher: concurrent attempts per worker")
	poolStale := flag.Duration("pool-stale", 2*time.Second, "pool launcher: heartbeat staleness threshold (0 disables)")
	workers := flag.Int("workers", 0, "override every job's per-process worker count (0 = respect the spec)")
	simBatch := flag.Int("sim-batch", 0, "override every job's simulate-batch lane cap (0 = respect the spec)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 503 rejections")
	flag.Parse()

	if err := run(options{
		addr: *addr, addrFile: *addrFile, dir: *dir,
		executors: *executors, queue: *queue, maxBody: *maxBody,
		shards: *shards, attempts: *attempts,
		launch: *launch, workerBin: *workerBin,
		poolWorkers: *poolWorkers, poolSlots: *poolSlots, poolStale: *poolStale,
		workers: *workers, simBatch: *simBatch, retryAfter: *retryAfter,
	}); err != nil {
		log.Fatal(err)
	}
}

type options struct {
	addr, addrFile, dir string
	executors, queue    int
	maxBody             int64
	shards, attempts    int
	launch, workerBin   string
	poolWorkers         int
	poolSlots           int
	poolStale           time.Duration
	workers, simBatch   int
	retryAfter          time.Duration
}

// launcher builds the configured shard launcher.
func launcher(o options) (sweep.Launcher, error) {
	switch o.launch {
	case "inproc":
		return sweep.InProcess{}, nil
	case "exec":
		if o.workerBin == "" {
			return nil, fmt.Errorf("-launch exec requires -worker-bin")
		}
		return sweep.Exec{Command: []string{o.workerBin}, Stderr: os.Stderr}, nil
	case "pool":
		if o.workerBin == "" {
			return nil, fmt.Errorf("-launch pool requires -worker-bin")
		}
		if o.poolWorkers < 1 {
			return nil, fmt.Errorf("-pool-workers must be >= 1, got %d", o.poolWorkers)
		}
		var ws []sweep.Worker
		for i := 0; i < o.poolWorkers; i++ {
			ws = append(ws, sweep.Worker{
				Name:    fmt.Sprintf("w%d", i),
				Command: []string{o.workerBin},
				Slots:   o.poolSlots,
			})
		}
		return &sweep.Pool{
			Workers:    ws,
			StaleAfter: o.poolStale,
			Stderr:     os.Stderr,
			Log:        log.Printf,
		}, nil
	default:
		return nil, fmt.Errorf("unknown -launch %q (want inproc, exec or pool)", o.launch)
	}
}

func run(o options) error {
	if o.dir == "" {
		return fmt.Errorf("-dir is required")
	}
	l, err := launcher(o)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Options{
		Dir:         o.dir,
		Executors:   o.executors,
		Queue:       o.queue,
		MaxBody:     o.maxBody,
		Shards:      o.shards,
		MaxAttempts: o.attempts,
		Launcher:    l,
		Workers:     o.workers,
		SimBatch:    o.simBatch,
		RetryAfter:  o.retryAfter,
		Log:         log.Printf,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if o.addrFile != "" {
		if err := atomicio.WriteFile(o.addrFile, []byte(bound+"\n")); err != nil {
			return err
		}
	}
	log.Printf("listening on %s (dir %s, %d executors, queue %d, launch %s, %d shards/job)",
		bound, o.dir, o.executors, o.queue, o.launch, o.shards)

	hs := &http.Server{Handler: srv}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()
	go func() {
		<-ctx.Done()
		log.Printf("shutdown signal: draining (running jobs requeue for resume)")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	}()

	// Run blocks until the signal context cancels and every executor has
	// drained; the HTTP server is shut down by the goroutine above.
	if err := srv.Run(ctx); err != nil {
		return err
	}
	if err := <-httpDone; err != nil && err != http.ErrServerClosed {
		return err
	}
	log.Printf("drained; bye")
	return nil
}
