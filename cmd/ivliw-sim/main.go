// Command ivliw-sim compiles and simulates one benchmark of the synthetic
// Mediabench-like suite under a chosen machine organization and scheduling
// heuristic, and prints the per-loop and whole-benchmark measurements:
// access classification, stall attribution, workload balance and cycle
// counts.
//
// Usage:
//
//	ivliw-sim [-bench gsmdec] [-heuristic IPBC] [-org interleaved]
//	          [-unroll selective] [-ab] [-ab-hints] [-no-chains] [-no-align]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"ivliw/internal/arch"
	"ivliw/internal/core"
	"ivliw/internal/experiments"
	"ivliw/internal/sched"
	"ivliw/internal/stats"
	"ivliw/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ivliw-sim: ")
	var (
		benchName = flag.String("bench", "gsmdec", "benchmark name, or 'all'")
		heuristic = flag.String("heuristic", "IPBC", "cluster heuristic: BASE, IBC or IPBC")
		orgStr    = flag.String("org", "interleaved", "cache organization: interleaved, multivliw or unified")
		unrollStr = flag.String("unroll", "selective", "unrolling: none, xN, OUF or selective")
		ab        = flag.Bool("ab", false, "enable 16-entry Attraction Buffers")
		abHints   = flag.Bool("ab-hints", false, "enable compiler attractable hints (§5.2)")
		noChains  = flag.Bool("no-chains", false, "disable memory dependent chains")
		noAlign   = flag.Bool("no-align", false, "disable variable alignment")
	)
	flag.Parse()

	v, err := buildVariant(*orgStr, *heuristic, *unrollStr, *ab, *abHints, *noChains, !*noAlign)
	if err != nil {
		log.Fatal(err)
	}

	var specs []workload.BenchSpec
	if *benchName == "all" {
		specs = workload.Suite()
	} else {
		spec, ok := workload.ByName(*benchName)
		if !ok {
			log.Fatalf("unknown benchmark %q", *benchName)
		}
		specs = []workload.BenchSpec{spec}
	}

	for _, spec := range specs {
		b, err := experiments.RunBench(spec, v)
		if err != nil {
			log.Fatal(err)
		}
		printBench(spec, v, b)
	}
}

func buildVariant(org, heuristic, unrollStr string, ab, abHints, noChains, aligned bool) (experiments.Variant, error) {
	var h sched.Heuristic
	switch strings.ToUpper(heuristic) {
	case "BASE":
		h = sched.Base
	case "IBC":
		h = sched.IBC
	case "IPBC":
		h = sched.IPBC
	default:
		return experiments.Variant{}, fmt.Errorf("unknown heuristic %q", heuristic)
	}
	var um core.UnrollMode
	switch strings.ToLower(unrollStr) {
	case "none", "no", "1":
		um = core.NoUnroll
	case "xn", "n":
		um = core.UnrollxN
	case "ouf":
		um = core.OUFUnroll
	case "selective":
		um = core.Selective
	default:
		return experiments.Variant{}, fmt.Errorf("unknown unroll mode %q", unrollStr)
	}
	var cfg arch.Config
	switch strings.ToLower(org) {
	case "interleaved":
		cfg = arch.Default()
	case "multivliw":
		cfg = arch.MultiVLIWConfig()
	case "unified":
		cfg = arch.UnifiedConfig(5)
	default:
		return experiments.Variant{}, fmt.Errorf("unknown organization %q", org)
	}
	cfg.AttractionBuffers = ab
	cfg.ABHints = abHints
	return experiments.Variant{
		Label:   fmt.Sprintf("%s/%s", org, heuristic),
		Cfg:     cfg,
		Opt:     core.Options{Heuristic: h, Unroll: um, NoChains: noChains},
		Aligned: aligned,
	}, nil
}

func printBench(spec workload.BenchSpec, v experiments.Variant, b stats.Bench) {
	fmt.Printf("%s  (%s, %v, AB=%v, align=%v)\n", spec.Name, v.Cfg.Org, v.Opt.Heuristic,
		v.Cfg.AttractionBuffers, v.Aligned)
	for i := range b.Loops {
		l := &b.Loops[i]
		fmt.Printf("  %-22s II=%-3d SC=%-2d copies=%-3d balance=%.2f  compute=%-9d stall=%-8d\n",
			l.Name, l.II, l.SC, l.Copies, l.Balance, l.ComputeCycles, l.StallCycles)
	}
	shares := b.AccessShares()
	fmt.Printf("  accesses: ")
	for c := stats.Class(0); c < stats.NumClasses; c++ {
		fmt.Printf("%s %.1f%%  ", c, 100*shares[c])
	}
	fmt.Println()
	sbc := b.StallByClass()
	fmt.Printf("  stall by class: LH=%d RH=%d LM=%d RM=%d CB=%d\n",
		sbc[stats.LHit], sbc[stats.RHit], sbc[stats.LMiss], sbc[stats.RMiss], sbc[stats.Combined])
	fmt.Printf("  total: %d cycles (%.1f%% stall)   local hit ratio %.1f%%   balance %.2f\n\n",
		b.TotalCycles(), 100*float64(b.StallCycles())/float64(maxI(b.TotalCycles(), 1)),
		100*b.LocalHitRatio(), b.WeightedBalance())
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
