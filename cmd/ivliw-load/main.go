// Command ivliw-load throws traffic at an ivliw-served daemon.
//
// Replay mode (the default) replays a seeded stream of overlapping spec
// submissions — a fixed population of distinct tiny sweeps, drawn with
// replacement so most submissions are duplicates — and reports
// submit-to-done latency percentiles, throughput and the dedup hit rate as
// JSON (the BENCH_9 headline shape):
//
//	ivliw-load -addr http://127.0.0.1:8372 [-n 1000] [-distinct 16]
//	           [-concurrency 32] [-seed 1] [-poll 5ms] [-out bench.json]
//
// Every submission is its own client interaction: POST the spec, poll the
// returned job until done, measure wall time. Latency therefore includes
// queueing and dedup wins — a duplicate of a completed job costs one
// round-trip, which is exactly the serving-layer property under test.
// 503 backpressure rejections are retried after the server's Retry-After
// hint (counted, not failed). The replay is deterministic in -seed: the
// same seed replays the same submission sequence.
//
// One-shot mode submits a spec file and optionally saves its rows — the
// smallest possible client, used by scripts/ci.sh to gate byte-identity of
// the served rows against the direct CLI run:
//
//	ivliw-load -addr URL -submit spec.json [-rows out.jsonl] [-poll 5ms]
//
// It prints `job=<hash> state=<state> dedup=<bool> cached=<bool> rows=<n>
// executions=<server total>` and exits nonzero if the job failed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ivliw/internal/atomicio"
	"ivliw/sweep"
	"ivliw/sweep/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ivliw-load: ")

	addr := flag.String("addr", "http://127.0.0.1:8372", "server base URL")
	n := flag.Int("n", 1000, "replay: total submissions")
	distinct := flag.Int("distinct", 16, "replay: distinct spec population size")
	concurrency := flag.Int("concurrency", 32, "replay: concurrent client sessions")
	seed := flag.Uint64("seed", 1, "replay: submission-sequence seed")
	poll := flag.Duration("poll", 5*time.Millisecond, "status poll interval")
	out := flag.String("out", "", "replay: also write the report JSON here (atomic)")
	submit := flag.String("submit", "", "one-shot: submit this spec file instead of replaying")
	rows := flag.String("rows", "", "one-shot: save the job's result rows here (atomic)")
	flag.Parse()

	c := &serve.Client{Base: *addr}
	ctx := context.Background()
	var err error
	if *submit != "" {
		err = oneShot(ctx, c, *submit, *rows, *poll)
	} else {
		err = replay(ctx, c, replayConfig{
			N: *n, Distinct: *distinct, Concurrency: *concurrency,
			Seed: *seed, Poll: *poll, Out: *out,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
}

// oneShot submits one spec file, waits for the terminal state, optionally
// saves the rows, and reports the interaction on stdout.
func oneShot(ctx context.Context, c *serve.Client, specPath, rowsPath string, poll time.Duration) error {
	specJSON, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	sub, err := c.Submit(ctx, specJSON)
	if err != nil {
		return err
	}
	st, err := c.Wait(ctx, sub.Job, poll)
	if err != nil {
		return err
	}
	if rowsPath != "" && st.State == serve.StateDone {
		f, err := atomicio.Create(rowsPath)
		if err != nil {
			return err
		}
		if _, err := c.Rows(ctx, sub.Job, f); err != nil {
			f.Abort()
			return err
		}
		if err := f.Commit(); err != nil {
			return err
		}
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("job=%s state=%s dedup=%t cached=%t rows=%d executions=%d\n",
		sub.Job, st.State, sub.Dedup, sub.Cached, st.Rows, stats.Executions)
	if st.State != serve.StateDone {
		return fmt.Errorf("job %s ended %s: %s", sub.Job, st.State, st.Error)
	}
	return nil
}

type replayConfig struct {
	N, Distinct, Concurrency int
	Seed                     uint64
	Poll                     time.Duration
	Out                      string
}

// report is the replay's JSON output — the BENCH_9 headline shape.
type report struct {
	Submissions int     `json:"submissions"`
	Distinct    int     `json:"distinct"`
	Concurrency int     `json:"concurrency"`
	Executions  int64   `json:"executions"`
	DedupHits   int64   `json:"dedup_hits"`
	DedupRate   float64 `json:"dedup_hit_rate"`
	Cached      int64   `json:"dedup_cached"`
	Retries503  int64   `json:"retries_503"`
	Failed      int64   `json:"failed"`
	P50MS       float64 `json:"p50_ms"`
	P90MS       float64 `json:"p90_ms"`
	P99MS       float64 `json:"p99_ms"`
	MeanMS      float64 `json:"mean_ms"`
	WallS       float64 `json:"wall_s"`
	PerSec      float64 `json:"throughput_per_s"`
}

// loadSpec builds the i-th member of the distinct-spec population: a
// one-point grid over one tiny synthetic benchmark, distinct in its seed
// and name (both inside the semantic hash), cheap enough that thousands of
// submissions finish in seconds. Compile and grid knobs stay fixed so the
// population stresses the serving layer, not the compiler.
func loadSpec(i int, seed uint64) ([]byte, error) {
	s := sweep.Spec{
		Grid: sweep.Grid{Clusters: []int{2}},
		Workloads: sweep.Workloads{Synth: []sweep.SynthSpec{{
			Name:           fmt.Sprintf("load-%04d", i),
			Seed:           seed + uint64(i),
			Kernels:        1,
			Iters:          64,
			FootprintBytes: 2048,
		}}},
		Compile: sweep.Compile{Heuristic: "IPBC", Unroll: "none"},
	}
	return s.Encode()
}

// splitmix64 is the deterministic draw behind the submission sequence —
// the same generator the sweep package uses for seeded jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// replay drives cfg.N submissions through cfg.Concurrency client sessions
// and prints the report.
func replay(ctx context.Context, c *serve.Client, cfg replayConfig) error {
	if cfg.Distinct < 1 || cfg.N < 1 || cfg.Concurrency < 1 {
		return fmt.Errorf("-n, -distinct and -concurrency must all be >= 1")
	}
	specs := make([][]byte, cfg.Distinct)
	for i := range specs {
		b, err := loadSpec(i, cfg.Seed)
		if err != nil {
			return err
		}
		specs[i] = b
	}
	startStats, err := c.Stats(ctx)
	if err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}

	var (
		next      atomic.Int64
		dedupHits atomic.Int64
		cached    atomic.Int64
		retries   atomic.Int64
		failed    atomic.Int64
		mu        sync.Mutex
		latencies []float64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.N) {
					return
				}
				spec := specs[splitmix64(cfg.Seed^uint64(i))%uint64(cfg.Distinct)]
				t0 := time.Now()
				var sub serve.SubmitResponse
				for {
					var err error
					sub, err = c.Submit(ctx, spec)
					if err == nil {
						break
					}
					if apiErr, ok := err.(*serve.APIError); ok && apiErr.Retryable() {
						retries.Add(1)
						wait := apiErr.RetryAfter
						if wait <= 0 {
							wait = 50 * time.Millisecond
						}
						time.Sleep(wait)
						continue
					}
					log.Printf("submission %d: %v", i, err)
					failed.Add(1)
					sub.Job = ""
					break
				}
				if sub.Job == "" {
					continue
				}
				if sub.Dedup {
					dedupHits.Add(1)
				}
				if sub.Cached {
					cached.Add(1)
				}
				st, err := c.Wait(ctx, sub.Job, cfg.Poll)
				if err != nil || st.State != serve.StateDone {
					log.Printf("submission %d (job %s): err=%v state=%s error=%s",
						i, sub.Job, err, st.State, st.Error)
					failed.Add(1)
					continue
				}
				ms := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				latencies = append(latencies, ms)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	endStats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	sort.Float64s(latencies)
	r := report{
		Submissions: cfg.N,
		Distinct:    cfg.Distinct,
		Concurrency: cfg.Concurrency,
		Executions:  endStats.Executions - startStats.Executions,
		DedupHits:   dedupHits.Load(),
		DedupRate:   float64(dedupHits.Load()) / float64(cfg.N),
		Cached:      cached.Load(),
		Retries503:  retries.Load(),
		Failed:      failed.Load(),
		P50MS:       percentile(latencies, 50),
		P90MS:       percentile(latencies, 90),
		P99MS:       percentile(latencies, 99),
		MeanMS:      mean(latencies),
		WallS:       wall.Seconds(),
		PerSec:      float64(len(latencies)) / wall.Seconds(),
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	os.Stdout.Write(b)
	if cfg.Out != "" {
		if err := atomicio.WriteFile(cfg.Out, b); err != nil {
			return err
		}
	}
	if f := failed.Load(); f > 0 {
		return fmt.Errorf("%d of %d submissions failed", f, cfg.N)
	}
	return nil
}

// percentile reads the p-th percentile from sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
