// Command ivliw-bench regenerates the paper's evaluation: every figure
// (4-8) and table (1-2) of §5, plus the headline numbers of the abstract
// and conclusions.
//
// Usage:
//
//	ivliw-bench -exp table1|table2|fig4|fig5|fig6|fig7|fig8|headlines|all
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"

	"ivliw/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ivliw-bench: ")
	exp := flag.String("exp", "all", "experiment: table1, table2, fig4, fig5, fig6, fig7, fig8, headlines or all")
	workers := flag.Int("workers", 0, "worker pool size for the (benchmark × variant) grids (0: GOMAXPROCS)")
	flag.Parse()
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	runners := map[string]func() error{
		"table1": func() error {
			fmt.Println("Table 1: benchmarks and inputs")
			fmt.Println()
			fmt.Print(experiments.Table1())
			return nil
		},
		"table2": func() error {
			fmt.Println("Table 2: configuration parameters")
			fmt.Println()
			fmt.Print(experiments.Table2())
			return nil
		},
		"fig4":      fig4,
		"fig5":      fig5,
		"fig6":      fig6,
		"fig7":      fig7,
		"fig8":      fig8,
		"headlines": headlines,
	}
	order := []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "headlines"}

	name := strings.ToLower(*exp)
	if name == "all" {
		for _, n := range order {
			if err := runners[n](); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
		return
	}
	r, ok := runners[name]
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	if err := r(); err != nil {
		log.Fatal(err)
	}
}

func fig4() error {
	rows, err := experiments.Figure4()
	if err != nil {
		return err
	}
	fmt.Println("Figure 4: memory access classification under IPBC")
	fmt.Println("bars: (i) no-unroll+align (ii) OUF,no-align (iii) OUF+align (iv) OUF+align,no-chains")
	fmt.Println("columns: local hits / remote hits / local misses / remote misses / combined")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-11s", r.Bench)
		for _, b := range r.Bars {
			s := b.Shares
			fmt.Printf("  | %4.2f %4.2f %4.2f %4.2f %4.2f", s[0], s[1], s[2], s[3], s[4])
		}
		fmt.Println()
	}
	return nil
}

func fig5() error {
	rows, err := experiments.Figure5()
	if err != nil {
		return err
	}
	fmt.Println("Figure 5: classification of accesses that generate stall time (remote-hit stall shares)")
	fmt.Println("columns: more-than-one-cluster / unclear-preferred / not-in-preferred / granularity")
	fmt.Println("(factors are not mutually exclusive; shares may sum above 1)")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-11s IBC  %4.2f %4.2f %4.2f %4.2f   IPBC %4.2f %4.2f %4.2f %4.2f\n",
			r.Bench,
			r.IBC[0], r.IBC[1], r.IBC[2], r.IBC[3],
			r.IPBC[0], r.IPBC[1], r.IPBC[2], r.IPBC[3])
	}
	return nil
}

func fig6() error {
	rows, err := experiments.Figure6()
	if err != nil {
		return err
	}
	fmt.Println("Figure 6: stall time by access type, normalized to IBC without Attraction Buffers")
	fmt.Println("bars: IBC / IBC+AB / IPBC / IPBC+AB")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-11s", r.Bench)
		for _, b := range r.Bars {
			fmt.Printf("  %s=%.2f", b.Variant, b.Normalized)
		}
		fmt.Println()
	}
	return nil
}

func fig7() error {
	rows, err := experiments.Figure7()
	if err != nil {
		return err
	}
	fmt.Println("Figure 7: workload balance under IPBC (0.25 = perfect, 1 = fully unbalanced)")
	fmt.Println()
	fmt.Printf("%-11s %-10s %-10s %s\n", "benchmark", "no-unroll", "OUF", "OUF,no-chains")
	for _, r := range rows {
		fmt.Printf("%-11s %-10.2f %-10.2f %.2f\n", r.Bench, r.NoUnroll, r.OUF, r.OUFNoChains)
	}
	return nil
}

func fig8() error {
	rows, err := experiments.Figure8()
	if err != nil {
		return err
	}
	fmt.Println("Figure 8: cycle counts normalized to a unified cache with 1-cycle latency")
	fmt.Println("bars: interleaved IPBC+AB / interleaved IBC+AB / multiVLIW / Unified(L=5); (s ...) = stall part")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-11s", r.Bench)
		for _, b := range r.Bars {
			fmt.Printf("  %s=%.3f(s%.3f)", b.Variant, b.Compute+b.Stall, b.Stall)
		}
		fmt.Println()
	}
	return nil
}

func headlines() error {
	fig4, err := experiments.Figure4()
	if err != nil {
		return err
	}
	fig6, err := experiments.Figure6()
	if err != nil {
		return err
	}
	fig8, err := experiments.Figure8()
	if err != nil {
		return err
	}
	h := experiments.ComputeHeadlines(fig4, fig6, fig8)
	fmt.Println("Headline numbers (paper value in parentheses):")
	fmt.Printf("  local-hit-ratio gain from variable alignment:  %+.1f points (paper: ~+20%%)\n", 100*h.LocalHitGainAlignment)
	fmt.Printf("  local-hit-ratio gain from OUF unrolling:       %+.1f points (paper: ~+27%%)\n", 100*h.LocalHitGainUnrolling)
	fmt.Printf("  stall reduction from Attraction Buffers (IBC):  %.1f%% (paper: 34%%)\n", 100*h.StallReductionIBC)
	fmt.Printf("  stall reduction from Attraction Buffers (IPBC): %.1f%% (paper: 29%%)\n", 100*h.StallReductionIPBC)
	fmt.Printf("  speedup over Unified(L=5), IBC+AB:              %+.1f%% (paper: +10%%)\n", 100*h.SpeedupIBC)
	fmt.Printf("  speedup over Unified(L=5), IPBC+AB:             %+.1f%% (paper: +5%%)\n", 100*h.SpeedupIPBC)
	fmt.Printf("  interleaved(IBC+AB) vs multiVLIW cycle ratio:   %+.1f%% (paper: ~+7%% degradation)\n", 100*h.VsMultiVLIW)
	return nil
}
