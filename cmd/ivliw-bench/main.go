// Command ivliw-bench regenerates the paper's evaluation — every figure
// (4-8) and table (1-2) of §5 plus the headline numbers — and, with -sweep,
// explores the design space around the paper's Table 2 point: a grid of
// (cluster count × interleaving factor × cache geometry × Attraction Buffer
// size × bus/memory latency) machine points against paper or synthetic
// benchmarks, emitted as machine-readable JSON lines.
//
// Usage:
//
//	ivliw-bench -exp table1|table2|fig4|fig5|fig6|fig7|fig8|headlines|all
//	ivliw-bench -sweep [-sweep-clusters 2,4,8] [-sweep-interleave 4,8]
//	            [-sweep-ab 0,16] [-sweep-cache-kb 8] [-sweep-assoc 2]
//	            [-sweep-bus 2] [-sweep-mem-lat 10]
//	            [-sweep-fus 1:1:1,2:1:2] [-sweep-reg-bus 2,4]
//	            [-sweep-mshr 0,4,8] [-sweep-ab-k 0,2,4]
//	            [-sweep-bench gsmdec,jpegenc,mpeg2dec|all]
//	            [-sweep-synth 4] [-sweep-seed 1]
//	            [-sweep-heuristic IPBC] [-sweep-unroll selective]
//	            [-compile-cache 256] [-out sweep.jsonl]
//
// Sweeps run as a two-stage streaming pipeline: distinct compile keys are
// compiled once into a bounded content-addressed schedule cache
// (-compile-cache artifacts; 0 disables) and rows are written to -out
// (default stdout) as their in-order cells complete, so memory stays
// bounded for arbitrarily large grids. The byte stream is identical with
// the cache on or off and for any -workers count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"ivliw/internal/arch"
	"ivliw/internal/core"
	"ivliw/internal/experiments"
	"ivliw/internal/pipeline"
	"ivliw/internal/sched"
	"ivliw/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ivliw-bench: ")
	exp := flag.String("exp", "all", "experiment: table1, table2, fig4, fig5, fig6, fig7, fig8, headlines or all")
	workers := flag.Int("workers", 0, "worker pool size for the (benchmark × variant) grids (0: GOMAXPROCS)")
	sweep := flag.Bool("sweep", false, "run the design-space sweep instead of -exp and emit JSON rows")
	sweepClusters := flag.String("sweep-clusters", "2,4,8", "sweep axis: cluster counts")
	sweepInterleave := flag.String("sweep-interleave", "4", "sweep axis: interleaving factors in bytes")
	sweepCacheKB := flag.String("sweep-cache-kb", "8", "sweep axis: total L1 capacities in KB")
	sweepAssoc := flag.String("sweep-assoc", "2", "sweep axis: L1 associativities")
	sweepAB := flag.String("sweep-ab", "0,16", "sweep axis: Attraction Buffer entries (0 = off)")
	sweepBus := flag.String("sweep-bus", "2", "sweep axis: core-cycles-per-bus-cycle ratios")
	sweepMemLat := flag.String("sweep-mem-lat", "10", "sweep axis: next-memory-level latencies")
	sweepFUs := flag.String("sweep-fus", "", "sweep axis: per-cluster FU mixes as int:fp:mem triples (empty: Table 2)")
	sweepRegBus := flag.String("sweep-reg-bus", "", "sweep axis: register-bus counts (empty: Table 2)")
	sweepMSHR := flag.String("sweep-mshr", "", "sweep axis: MSHR depths, 0 = unbounded (empty: unbounded)")
	sweepABK := flag.String("sweep-ab-k", "", "sweep axis: Attraction Buffer hint budgets K, 0 = hints off (empty: off)")
	sweepBench := flag.String("sweep-bench", "gsmdec,jpegenc,mpeg2dec", "benchmarks to sweep (comma list, or 'all' for the full suite)")
	sweepSynth := flag.Int("sweep-synth", 0, "number of synthetic benchmarks to append to the sweep")
	sweepSeed := flag.Uint64("sweep-seed", 1, "base seed of the synthetic workload generator")
	sweepHeuristic := flag.String("sweep-heuristic", "IPBC", "cluster heuristic of every sweep point: BASE, IBC or IPBC")
	sweepUnroll := flag.String("sweep-unroll", "selective", "unrolling of every sweep point: none, xN, OUF or selective")
	compileCache := flag.Int("compile-cache", pipeline.DefaultCacheSize, "compiled-schedule cache capacity in artifacts (0 disables; output is identical either way)")
	out := flag.String("out", "", "write -sweep JSONL rows to this file instead of stdout")
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(flag.CommandLine.Output(), "ivliw-bench: -workers must be >= 0, got %d\n", *workers)
		flag.Usage()
		os.Exit(2)
	}
	if *compileCache < 0 {
		fmt.Fprintf(flag.CommandLine.Output(), "ivliw-bench: -compile-cache must be >= 0, got %d\n", *compileCache)
		flag.Usage()
		os.Exit(2)
	}
	experiments.SetWorkers(*workers)

	if *sweep {
		err := runSweep(sweepOptions{
			clusters:     *sweepClusters,
			interleave:   *sweepInterleave,
			cacheKB:      *sweepCacheKB,
			assoc:        *sweepAssoc,
			ab:           *sweepAB,
			bus:          *sweepBus,
			memLat:       *sweepMemLat,
			fus:          *sweepFUs,
			regBus:       *sweepRegBus,
			mshr:         *sweepMSHR,
			abK:          *sweepABK,
			bench:        *sweepBench,
			synth:        *sweepSynth,
			seed:         *sweepSeed,
			heuristic:    *sweepHeuristic,
			unroll:       *sweepUnroll,
			workers:      *workers,
			compileCache: *compileCache,
			out:          *out,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	runners := map[string]func() error{
		"table1": func() error {
			fmt.Println("Table 1: benchmarks and inputs")
			fmt.Println()
			fmt.Print(experiments.Table1())
			return nil
		},
		"table2": func() error {
			fmt.Println("Table 2: configuration parameters")
			fmt.Println()
			fmt.Print(experiments.Table2())
			return nil
		},
		"fig4":      fig4,
		"fig5":      fig5,
		"fig6":      fig6,
		"fig7":      fig7,
		"fig8":      fig8,
		"headlines": headlines,
	}
	order := []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "headlines"}

	name := strings.ToLower(*exp)
	if name == "all" {
		for _, n := range order {
			if err := runners[n](); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
		return
	}
	r, ok := runners[name]
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	if err := r(); err != nil {
		log.Fatal(err)
	}
}

func fig4() error {
	rows, err := experiments.Figure4()
	if err != nil {
		return err
	}
	fmt.Println("Figure 4: memory access classification under IPBC")
	fmt.Println("bars: (i) no-unroll+align (ii) OUF,no-align (iii) OUF+align (iv) OUF+align,no-chains")
	fmt.Println("columns: local hits / remote hits / local misses / remote misses / combined")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-11s", r.Bench)
		for _, b := range r.Bars {
			s := b.Shares
			fmt.Printf("  | %4.2f %4.2f %4.2f %4.2f %4.2f", s[0], s[1], s[2], s[3], s[4])
		}
		fmt.Println()
	}
	return nil
}

func fig5() error {
	rows, err := experiments.Figure5()
	if err != nil {
		return err
	}
	fmt.Println("Figure 5: classification of accesses that generate stall time (remote-hit stall shares)")
	fmt.Println("columns: more-than-one-cluster / unclear-preferred / not-in-preferred / granularity")
	fmt.Println("(factors are not mutually exclusive; shares may sum above 1)")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-11s IBC  %4.2f %4.2f %4.2f %4.2f   IPBC %4.2f %4.2f %4.2f %4.2f\n",
			r.Bench,
			r.IBC[0], r.IBC[1], r.IBC[2], r.IBC[3],
			r.IPBC[0], r.IPBC[1], r.IPBC[2], r.IPBC[3])
	}
	return nil
}

func fig6() error {
	rows, err := experiments.Figure6()
	if err != nil {
		return err
	}
	fmt.Println("Figure 6: stall time by access type, normalized to IBC without Attraction Buffers")
	fmt.Println("bars: IBC / IBC+AB / IPBC / IPBC+AB")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-11s", r.Bench)
		for _, b := range r.Bars {
			fmt.Printf("  %s=%.2f", b.Variant, b.Normalized)
		}
		fmt.Println()
	}
	return nil
}

func fig7() error {
	rows, err := experiments.Figure7()
	if err != nil {
		return err
	}
	fmt.Println("Figure 7: workload balance under IPBC (0.25 = perfect, 1 = fully unbalanced)")
	fmt.Println()
	fmt.Printf("%-11s %-10s %-10s %s\n", "benchmark", "no-unroll", "OUF", "OUF,no-chains")
	for _, r := range rows {
		fmt.Printf("%-11s %-10.2f %-10.2f %.2f\n", r.Bench, r.NoUnroll, r.OUF, r.OUFNoChains)
	}
	return nil
}

func fig8() error {
	rows, err := experiments.Figure8()
	if err != nil {
		return err
	}
	fmt.Println("Figure 8: cycle counts normalized to a unified cache with 1-cycle latency")
	fmt.Println("bars: interleaved IPBC+AB / interleaved IBC+AB / multiVLIW / Unified(L=5); (s ...) = stall part")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-11s", r.Bench)
		for _, b := range r.Bars {
			fmt.Printf("  %s=%.3f(s%.3f)", b.Variant, b.Compute+b.Stall, b.Stall)
		}
		fmt.Println()
	}
	return nil
}

func headlines() error {
	fig4, err := experiments.Figure4()
	if err != nil {
		return err
	}
	fig6, err := experiments.Figure6()
	if err != nil {
		return err
	}
	fig8, err := experiments.Figure8()
	if err != nil {
		return err
	}
	h := experiments.ComputeHeadlines(fig4, fig6, fig8)
	fmt.Println("Headline numbers (paper value in parentheses):")
	fmt.Printf("  local-hit-ratio gain from variable alignment:  %+.1f points (paper: ~+20%%)\n", 100*h.LocalHitGainAlignment)
	fmt.Printf("  local-hit-ratio gain from OUF unrolling:       %+.1f points (paper: ~+27%%)\n", 100*h.LocalHitGainUnrolling)
	fmt.Printf("  stall reduction from Attraction Buffers (IBC):  %.1f%% (paper: 34%%)\n", 100*h.StallReductionIBC)
	fmt.Printf("  stall reduction from Attraction Buffers (IPBC): %.1f%% (paper: 29%%)\n", 100*h.StallReductionIPBC)
	fmt.Printf("  speedup over Unified(L=5), IBC+AB:              %+.1f%% (paper: +10%%)\n", 100*h.SpeedupIBC)
	fmt.Printf("  speedup over Unified(L=5), IPBC+AB:             %+.1f%% (paper: +5%%)\n", 100*h.SpeedupIPBC)
	fmt.Printf("  interleaved(IBC+AB) vs multiVLIW cycle ratio:   %+.1f%% (paper: ~+7%% degradation)\n", 100*h.VsMultiVLIW)
	return nil
}

// sweepOptions carries the parsed -sweep-* flag values.
type sweepOptions struct {
	clusters, interleave, cacheKB, assoc, ab, bus, memLat string
	fus, regBus, mshr, abK                                string
	bench                                                 string
	synth                                                 int
	seed                                                  uint64
	heuristic, unroll                                     string
	workers                                               int
	compileCache                                          int
	out                                                   string
}

// runSweep expands the flag grid, resolves the benchmarks, and streams the
// sweep's JSON lines to -out (stdout by default): each row is encoded as
// its in-order cell completes, with distinct compile keys compiled once
// into the shared schedule cache. Cache effectiveness is reported on
// stderr; the row stream itself is byte-identical for any cache capacity
// and worker count.
func runSweep(o sweepOptions) error {
	grid := experiments.SweepGrid{}
	for _, ax := range []struct {
		name     string
		csv      string
		dst      *[]int
		optional bool
	}{
		{"-sweep-clusters", o.clusters, &grid.Clusters, false},
		{"-sweep-interleave", o.interleave, &grid.Interleave, false},
		{"-sweep-cache-kb", o.cacheKB, &grid.CacheBytes, false},
		{"-sweep-assoc", o.assoc, &grid.Assoc, false},
		{"-sweep-ab", o.ab, &grid.ABEntries, false},
		{"-sweep-bus", o.bus, &grid.BusCycleRatio, false},
		{"-sweep-mem-lat", o.memLat, &grid.NextLevelLatency, false},
		{"-sweep-reg-bus", o.regBus, &grid.RegBuses, true},
		{"-sweep-mshr", o.mshr, &grid.MSHRs, true},
		{"-sweep-ab-k", o.abK, &grid.ABHintK, true},
	} {
		if ax.optional && strings.TrimSpace(ax.csv) == "" {
			continue // empty axis: keep the Table 2 value
		}
		vs, err := parseIntList(ax.csv)
		if err != nil {
			return fmt.Errorf("%s: %w", ax.name, err)
		}
		*ax.dst = vs
	}
	for i, kb := range grid.CacheBytes {
		grid.CacheBytes[i] = kb * 1024
	}
	var err error
	if grid.FUs, err = parseFUList(o.fus); err != nil {
		return fmt.Errorf("-sweep-fus: %w", err)
	}
	if grid.Heuristic, err = parseHeuristic(o.heuristic); err != nil {
		return err
	}
	if grid.Unroll, err = parseUnroll(o.unroll); err != nil {
		return err
	}

	benches, err := resolveBenches(o.bench, o.synth, o.seed)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	var f *os.File
	if o.out != "" {
		var err error
		if f, err = os.Create(o.out); err != nil {
			return err
		}
		w = f
	}
	bw := bufio.NewWriter(w)
	cc := pipeline.NewCache(o.compileCache)
	err = experiments.EncodeSweepTo(experiments.SweepSpec{
		Points:  grid.Points(),
		Benches: benches,
		Workers: o.workers,
		Cache:   cc,
	}, bw)
	if err == nil {
		err = bw.Flush()
	}
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	st := cc.Stats()
	log.Printf("compile cache: %d hits, %d compiles, %d evictions (capacity %d)",
		st.Hits, st.Misses, st.Evictions, cc.Capacity())
	return nil
}

// parseFUList parses a comma-separated list of int:fp:mem functional-unit
// triples ("1:1:1,2:1:2"). An empty string means "Table 2 mix only".
func parseFUList(csv string) ([][arch.NumFUKinds]int, error) {
	csv = strings.TrimSpace(csv)
	if csv == "" {
		return nil, nil
	}
	var out [][arch.NumFUKinds]int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		parts := strings.Split(f, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad triple %q: want int:fp:mem, e.g. 1:1:1", f)
		}
		var fu [arch.NumFUKinds]int
		for i, kind := range []arch.FUKind{arch.FUInt, arch.FUFP, arch.FUMem} {
			v, err := strconv.Atoi(strings.TrimSpace(parts[i]))
			if err != nil {
				return nil, fmt.Errorf("bad triple %q: %v", f, err)
			}
			fu[kind] = v
		}
		out = append(out, fu)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// resolveBenches turns the -sweep-bench list (plus -sweep-synth synthetic
// benchmarks) into specs.
func resolveBenches(csv string, synth int, seed uint64) ([]workload.BenchSpec, error) {
	var benches []workload.BenchSpec
	switch strings.ToLower(strings.TrimSpace(csv)) {
	case "all":
		benches = workload.Suite()
	case "", "none":
	default:
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			spec, ok := workload.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown benchmark %q (see -exp table1)", name)
			}
			benches = append(benches, spec)
		}
	}
	if synth < 0 {
		return nil, fmt.Errorf("-sweep-synth must be >= 0, got %d", synth)
	}
	syn, err := workload.SynthSuite(synth, seed)
	if err != nil {
		return nil, err
	}
	benches = append(benches, syn...)
	if len(benches) == 0 {
		return nil, fmt.Errorf("no benchmarks selected: set -sweep-bench and/or -sweep-synth")
	}
	return benches, nil
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: want a comma-separated integer list", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseHeuristic(s string) (sched.Heuristic, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "BASE":
		return sched.Base, nil
	case "IBC":
		return sched.IBC, nil
	case "IPBC":
		return sched.IPBC, nil
	}
	return 0, fmt.Errorf("unknown heuristic %q (want BASE, IBC or IPBC)", s)
}

func parseUnroll(s string) (core.UnrollMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none", "no", "1":
		return core.NoUnroll, nil
	case "xn", "n":
		return core.UnrollxN, nil
	case "ouf":
		return core.OUFUnroll, nil
	case "selective":
		return core.Selective, nil
	}
	return 0, fmt.Errorf("unknown unroll mode %q (want none, xN, OUF or selective)", s)
}
