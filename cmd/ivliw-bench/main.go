// Command ivliw-bench regenerates the paper's evaluation — every figure
// (4-8) and table (1-2) of §5 plus the headline numbers — and, with -sweep,
// explores the design space around the paper's Table 2 point: a grid of
// (cluster count × interleaving factor × cache geometry × Attraction Buffer
// size × bus/memory latency) machine points against paper or synthetic
// benchmarks, emitted as machine-readable JSON lines.
//
// Usage:
//
//	ivliw-bench -exp table1|table2|fig4|fig5|fig6|fig7|fig8|headlines|all
//	ivliw-bench -sweep [-sweep-clusters 2,4,8] [-sweep-interleave 4,8]
//	            [-sweep-ab 0,16] [-sweep-cache-kb 8] [-sweep-assoc 2]
//	            [-sweep-bus 2] [-sweep-mem-lat 10]
//	            [-sweep-fus 1:1:1,2:1:2] [-sweep-reg-bus 2,4]
//	            [-sweep-mshr 0,4,8] [-sweep-ab-k 0,2,4]
//	            [-sweep-bench gsmdec,jpegenc,mpeg2dec|all]
//	            [-sweep-synth 4] [-sweep-seed 1]
//	            [-sweep-heuristic IPBC] [-sweep-unroll selective]
//	            [-compile-cache 256] [-artifact-dir DIR] [-sim-batch 8]
//	            [-shard i/n] [-out sweep.jsonl] [-spec-out run.json]
//	ivliw-bench -spec run.json [-shard i/n] [-claim lo:hi] [-artifact-dir DIR]
//	            [-sim-batch 8] [-out shard.jsonl]
//	ivliw-bench -spec run.json -calibrate calibration.json
//	ivliw-bench -spec run.json -spec-hash
//	ivliw-bench -spec run.json -coordinate 3 [-coordinate-dir DIR]
//	            [-coordinate-launch exec|inproc|pool] [-coordinate-attempts 3]
//	            [-coordinate-straggler 90s] [-coordinate-backoff 250ms]
//	            [-coordinate-seed 1] [-coordinate-balance count|cost]
//	            [-coordinate-steal 4] [-coordinate-calibration calibration.json]
//	            [-out sweep.jsonl]
//	ivliw-bench -spec run.json -coordinate 3 -coordinate-launch pool
//	            [-pool-workers 3] [-pool-slots 1] [-pool-capacity 0]
//	            [-pool-stale 2s] [-pool-heartbeat 500ms]
//	            [-pool-quarantine 2] [-pool-backoff 1s]
//
// The sweep flags are a thin front end over the public ivliw/sweep package:
// they parse into a declarative, serializable sweep.Spec. -spec-out writes
// that spec as JSON (without running), -spec runs a previously written spec
// file, so a run is a reproducible artifact instead of flag soup. -shard
// i/n evaluates the i-th of n contiguous row slices — the concatenation of
// all shards' outputs is byte-identical to the unsharded run — and
// -artifact-dir layers the compile cache over a persistent
// content-addressed artifact store so repeated and sharded runs start warm.
//
// -coordinate n runs the whole sharded workflow in one command: the grid is
// cut into n shard runs executed through a launcher (exec: worker
// subprocesses of this binary, whose Command prefix is also the ssh seam;
// inproc: goroutines), failed attempts are retried and stragglers
// optionally relaunched within -coordinate-attempts, and the per-shard
// outputs are stitched into -out byte-identical to the unsharded run.
// -coordinate-balance cost cuts the grid at equal predicted cost instead of
// equal row count, under a cost model optionally calibrated to this machine
// (-calibrate writes the file, -coordinate-calibration loads it; a missing
// or corrupt file degrades to the built-in model with a warning).
// -coordinate-steal k cuts finer — up to k cost-ordered chunks per shard,
// on compile-key atom boundaries — and idle workers claim the next chunk
// (heaviest first) as they finish, so a straggling range delays the run by
// its own length, not its whole static shard's. Workers receive explicit
// ranges through the -claim lo:hi protocol; every cut policy preserves
// byte-identity by construction, because rows stay keyed by grid index and
// the stitcher concatenates ranges in index order. Zero-row ranges are
// committed as empty outputs directly, never launched.
// Shard outputs and the manifest live in -coordinate-dir; every state
// transition is committed atomically (temp+rename), so a coordinator
// killed mid-run resumes its completed shards when rerun over the same
// directory. SIGINT/SIGTERM cancel sweep and coordinator runs cleanly —
// staged output files are discarded, never truncated — and exit 130.
//
// -coordinate-launch pool schedules the shard attempts across a
// health-checked pool of worker subprocesses (sweep.Pool): each attempt
// writes heartbeats (-heartbeat under the hood), attempts whose heartbeat
// goes stale for -pool-stale are killed and retried, and workers that fail
// repeatedly are quarantined with backoff. The IVLIW_FAULT_PLAN environment
// variable may name a JSON fault plan (see ivliw/sweep/fault) that
// deterministically crashes, hangs or wedges specific shard attempts and
// kills specific pool workers — the harness scripts/ci.sh uses to prove
// byte-identity survives worker failure.
//
// Sweeps run as a two-stage streaming pipeline: distinct compile keys are
// compiled once into the artifact store (-compile-cache memory artifacts, 0
// disables; plus the optional -artifact-dir disk tier) and rows are written
// to -out (default stdout) as their in-order cells complete, so memory
// stays bounded for arbitrarily large grids. -sim-batch k additionally runs
// up to k sibling cells — same benchmark and compile key, differing only in
// simulate-only axes like MSHR depth or Attraction Buffer geometry — as
// lanes of one batched simulation pass. The byte stream is identical for
// any store configuration, any -workers count, and any -sim-batch value.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ivliw/internal/arch"
	"ivliw/internal/atomicio"
	"ivliw/internal/experiments"
	"ivliw/internal/pipeline"
	"ivliw/sweep"
	"ivliw/sweep/fault"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ivliw-bench: ")
	exp := flag.String("exp", "all", "experiment: table1, table2, fig4, fig5, fig6, fig7, fig8, headlines or all")
	workers := flag.Int("workers", 0, "worker pool size for the (benchmark × variant) grids (0: GOMAXPROCS)")
	simBatch := flag.Int("sim-batch", 0, "batch up to this many sibling sweep cells (same compile key) into one simulation pass (0: off; output is identical either way)")
	sweepMode := flag.Bool("sweep", false, "run the design-space sweep instead of -exp and emit JSON rows")
	sweepClusters := flag.String("sweep-clusters", "2,4,8", "sweep axis: cluster counts")
	sweepInterleave := flag.String("sweep-interleave", "4", "sweep axis: interleaving factors in bytes")
	sweepCacheKB := flag.String("sweep-cache-kb", "8", "sweep axis: total L1 capacities in KB")
	sweepAssoc := flag.String("sweep-assoc", "2", "sweep axis: L1 associativities")
	sweepAB := flag.String("sweep-ab", "0,16", "sweep axis: Attraction Buffer entries (0 = off)")
	sweepBus := flag.String("sweep-bus", "2", "sweep axis: core-cycles-per-bus-cycle ratios")
	sweepMemLat := flag.String("sweep-mem-lat", "10", "sweep axis: next-memory-level latencies")
	sweepFUs := flag.String("sweep-fus", "", "sweep axis: per-cluster FU mixes as int:fp:mem triples (empty: Table 2)")
	sweepRegBus := flag.String("sweep-reg-bus", "", "sweep axis: register-bus counts (empty: Table 2)")
	sweepMSHR := flag.String("sweep-mshr", "", "sweep axis: MSHR depths, 0 = unbounded (empty: unbounded)")
	sweepABK := flag.String("sweep-ab-k", "", "sweep axis: Attraction Buffer hint budgets K, 0 = hints off (empty: off)")
	sweepBench := flag.String("sweep-bench", "gsmdec,jpegenc,mpeg2dec", "benchmarks to sweep (comma list, or 'all' for the full suite)")
	sweepSynth := flag.Int("sweep-synth", 0, "number of synthetic benchmarks to append to the sweep")
	sweepSeed := flag.Uint64("sweep-seed", 1, "base seed of the synthetic workload generator")
	sweepHeuristic := flag.String("sweep-heuristic", "IPBC", "cluster heuristic of every sweep point: BASE, IBC or IPBC")
	sweepUnroll := flag.String("sweep-unroll", "selective", "unrolling of every sweep point: none, xN, OUF or selective")
	compileCache := flag.Int("compile-cache", pipeline.DefaultCacheSize, "in-memory compiled-schedule cache capacity in artifacts (0 disables; output is identical either way)")
	artifactDir := flag.String("artifact-dir", "", "persist compiled schedule artifacts in this directory (content-addressed; repeated and sharded sweeps start warm)")
	shardFlag := flag.String("shard", "", "evaluate shard i/n of the sweep grid (e.g. 0/3); concatenating all shards' outputs reproduces the unsharded run byte-for-byte")
	claimFlag := flag.String("claim", "", "evaluate exactly rows lo:hi of the sweep grid (e.g. 12:16), overriding -shard's row arithmetic — the coordinator's cost-cut/work-stealing protocol")
	calibrate := flag.String("calibrate", "", "probe this machine's compile/simulate costs over the spec's cluster axis and write the calibration JSON to this file (no sweep rows are produced)")
	specPath := flag.String("spec", "", "run the sweep described by this spec file (JSON, see -spec-out) instead of the -sweep-* flags")
	specOut := flag.String("spec-out", "", "write the sweep spec as JSON to this file and exit without running")
	specHash := flag.Bool("spec-hash", false, "print the spec's semantic hash — the dedup/job key ivliw-served uses — and exit without running")
	out := flag.String("out", "", "write sweep JSONL rows to this file instead of stdout")
	coordinate := flag.Int("coordinate", 0, "run the sweep as this many coordinated shards: launch, retry, resume, stitch (0: off)")
	coordDir := flag.String("coordinate-dir", "", "coordinator work dir (manifest + shard outputs); reuse it to resume a killed run (default: fresh temp dir)")
	coordLaunch := flag.String("coordinate-launch", "exec", "shard launcher: exec (worker subprocesses), inproc (goroutines) or pool (health-checked worker pool)")
	coordAttempts := flag.Int("coordinate-attempts", 3, "max attempts per shard (first try + retries + straggler backups)")
	coordStraggler := flag.Duration("coordinate-straggler", 0, "relaunch a shard still running after this long (e.g. 90s; 0: never)")
	coordBackoff := flag.Duration("coordinate-backoff", 0, "base delay before retrying a failed shard attempt, doubled per retry with deterministic jitter (0: retry immediately)")
	coordSeed := flag.Uint64("coordinate-seed", 0, "seed of the deterministic retry and quarantine jitter")
	coordParallel := flag.Int("coordinate-parallel", 0, "bound on concurrently running shard attempts (0: all shards at once); 1 serializes launches, e.g. for contention-free per-shard timing")
	coordBalance := flag.String("coordinate-balance", "count", "shard cut policy: count (row-count-balanced slices) or cost (equal predicted cost under the calibration model, cut on compile-key atoms)")
	coordSteal := flag.Int("coordinate-steal", 0, "work stealing: cut the grid into up to N cost-ordered chunks per shard, claimed dynamically by idle workers (0: static shards)")
	coordCalibration := flag.String("coordinate-calibration", "", "calibration JSON for the cost model (see -calibrate); a missing or corrupt file degrades to the built-in default with a warning")
	heartbeat := flag.String("heartbeat", "", "write liveness heartbeats to this file while the sweep runs (sweep/spec runs)")
	heartbeatInterval := flag.Duration("heartbeat-interval", 0, "heartbeat period (0: 500ms; needs -heartbeat)")
	poolWorkers := flag.Int("pool-workers", 3, "pool size for -coordinate-launch pool: worker subprocesses of this binary")
	poolCapacity := flag.Int("pool-capacity", 0, "per-attempt -workers each pool worker advertises (0: worker default)")
	poolSlots := flag.Int("pool-slots", 1, "concurrent shard attempts per pool worker")
	poolStale := flag.Duration("pool-stale", 2*time.Second, "kill a pool attempt whose heartbeat is older than this (0: no heartbeat monitoring)")
	poolHeartbeat := flag.Duration("pool-heartbeat", 0, "heartbeat period requested from pool workers (0: pool-stale/4)")
	poolQuarantine := flag.Int("pool-quarantine", 2, "quarantine a pool worker after this many consecutive failures (-1: never)")
	poolBackoff := flag.Duration("pool-backoff", time.Second, "base quarantine backoff, doubled per quarantine with deterministic jitter")
	flag.Parse()
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(flag.CommandLine.Output(), "ivliw-bench: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 {
		usageErr("-workers must be >= 0, got %d", *workers)
	}
	if *simBatch < 0 {
		usageErr("-sim-batch must be >= 0, got %d", *simBatch)
	}
	if *compileCache < 0 {
		usageErr("-compile-cache must be >= 0, got %d", *compileCache)
	}
	shard, err := parseShard(*shardFlag)
	if err != nil {
		usageErr("%v", err)
	}
	claimLo, claimHi, err := parseClaim(*claimFlag)
	if err != nil {
		usageErr("%v", err)
	}
	experiments.SetWorkers(*workers)
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *coordinate < 0 {
		usageErr("-coordinate must be >= 0, got %d", *coordinate)
	}
	if *coordinate == 0 {
		for _, name := range sortedNames(set) {
			if name != "coordinate" && strings.HasPrefix(name, "coordinate-") {
				usageErr("-%s only applies with -coordinate n", name)
			}
		}
	} else {
		if set["shard"] {
			usageErr("-shard cannot be combined with -coordinate (the coordinator owns sharding)")
		}
		if set["claim"] {
			usageErr("-claim cannot be combined with -coordinate (the coordinator owns sharding)")
		}
		if *coordLaunch != "exec" && *coordLaunch != "inproc" && *coordLaunch != "pool" {
			usageErr("-coordinate-launch must be exec, inproc or pool, got %q", *coordLaunch)
		}
		if *coordAttempts < 1 {
			usageErr("-coordinate-attempts must be >= 1, got %d", *coordAttempts)
		}
		if *coordBalance != sweep.BalanceCount && *coordBalance != sweep.BalanceCost {
			usageErr("-coordinate-balance must be count or cost, got %q", *coordBalance)
		}
		if *coordSteal < 0 {
			usageErr("-coordinate-steal must be >= 0, got %d", *coordSteal)
		}
		if *coordParallel < 0 {
			usageErr("-coordinate-parallel must be >= 0, got %d", *coordParallel)
		}
		if set["heartbeat"] || set["heartbeat-interval"] {
			usageErr("-heartbeat is a per-worker knob; coordinated runs assign heartbeats through -coordinate-launch pool")
		}
	}
	if !(*coordinate > 0 && *coordLaunch == "pool") {
		for _, name := range sortedNames(set) {
			if strings.HasPrefix(name, "pool-") {
				usageErr("-%s only applies with -coordinate-launch pool", name)
			}
		}
	} else {
		if *poolWorkers < 1 {
			usageErr("-pool-workers must be >= 1, got %d", *poolWorkers)
		}
		if *poolSlots < 1 {
			usageErr("-pool-slots must be >= 1, got %d", *poolSlots)
		}
	}
	if set["heartbeat-interval"] && !set["heartbeat"] {
		usageErr("-heartbeat-interval needs -heartbeat")
	}
	if *calibrate != "" {
		// Calibration is its own mode: it probes costs and writes one JSON
		// file. Flags that shape a row-producing run have nothing to shape.
		for _, name := range []string{"spec-out", "shard", "claim", "out"} {
			if set[name] {
				usageErr("-%s cannot be combined with -calibrate", name)
			}
		}
		if *coordinate > 0 {
			usageErr("-calibrate cannot be combined with -coordinate (calibrate first, then pass the file via -coordinate-calibration)")
		}
	}

	if *specHash {
		// Hashing is read-only: flags that run, shard or redirect a sweep
		// have nothing to act on.
		for _, name := range []string{"spec-out", "calibrate", "coordinate", "shard", "claim", "out"} {
			if set[name] {
				usageErr("-%s cannot be combined with -spec-hash", name)
			}
		}
	}
	if *sweepMode || *specPath != "" || *specOut != "" || *coordinate > 0 || *calibrate != "" || *specHash {
		if set["exp"] {
			usageErr("-exp cannot be combined with -sweep/-spec/-spec-out")
		}
		var spec sweep.Spec
		if *specPath != "" {
			// A spec file is the whole grid/workload/compiler description;
			// mixing it with the flag-soup axes would silently ignore one
			// of the two, so reject the combination outright. Every axis
			// flag (and only axis flags) carries the sweep- prefix, so the
			// guard stays correct as axes are added.
			for _, name := range sortedNames(set) {
				if strings.HasPrefix(name, "sweep-") {
					usageErr("-%s cannot be combined with -spec (edit the spec file instead)", name)
				}
			}
			var err error
			if spec, err = sweep.LoadSpec(*specPath); err != nil {
				log.Fatal(err)
			}
			// Per-process knobs may override the file: the same spec drives
			// every shard of a multi-process run.
			if set["workers"] {
				spec.Workers = *workers
			}
			if set["sim-batch"] {
				spec.SimBatch = *simBatch
			}
			if set["compile-cache"] {
				spec.Store.Memory = memoryCapacity(*compileCache)
			}
			if set["artifact-dir"] {
				spec.Store.Dir = *artifactDir
			}
			if set["out"] {
				spec.Output.Path = *out
			}
			if set["shard"] {
				spec.Shard = shard
			}
		} else {
			var err error
			spec, err = specFromFlags(sweepOptions{
				cacheSet:     set["compile-cache"],
				clusters:     *sweepClusters,
				interleave:   *sweepInterleave,
				cacheKB:      *sweepCacheKB,
				assoc:        *sweepAssoc,
				bus:          *sweepBus,
				memLat:       *sweepMemLat,
				ab:           *sweepAB,
				fus:          *sweepFUs,
				regBus:       *sweepRegBus,
				mshr:         *sweepMSHR,
				abK:          *sweepABK,
				bench:        *sweepBench,
				synth:        *sweepSynth,
				seed:         *sweepSeed,
				heuristic:    *sweepHeuristic,
				unroll:       *sweepUnroll,
				workers:      *workers,
				simBatch:     *simBatch,
				compileCache: *compileCache,
				artifactDir:  *artifactDir,
				shard:        shard,
				out:          *out,
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		// An explicit -claim range overrides whatever row arithmetic the
		// shard would do: Shard.Range answers [Lo, Hi) whenever Hi > Lo.
		// Applied after the spec is built, whichever way it was built, like
		// the other per-process knobs below.
		if set["claim"] {
			spec.Shard.Lo, spec.Shard.Hi = claimLo, claimHi
		}
		// Heartbeats are a per-process knob like -out: applied after the
		// spec is built, whichever way it was built.
		if set["heartbeat"] {
			spec.Heartbeat.Path = *heartbeat
		}
		if set["heartbeat-interval"] {
			spec.Heartbeat.IntervalMS = int(heartbeatInterval.Milliseconds())
		}
		if *specHash {
			// The semantic fingerprint over grid/workloads/compile — the
			// job ID an ivliw-served submission of this spec would get, so
			// clients can predict dedup keys offline. Validate first: a
			// hash of an unrunnable spec keys nothing.
			if err := spec.Validate(); err != nil {
				log.Fatal(err)
			}
			hash, err := spec.Hash()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(hash)
			return
		}
		if *specOut != "" {
			// Validate before writing: a captured spec file must be
			// runnable. The run path below leaves validation to sweep.Run,
			// which resolves the spec exactly once.
			if err := spec.Validate(); err != nil {
				log.Fatal(err)
			}
			data, err := spec.Encode()
			if err != nil {
				log.Fatal(err)
			}
			if err := atomicio.WriteFile(*specOut, data); err != nil {
				log.Fatal(err)
			}
			// Captured per-process knobs are easy to forget: a pinned shard
			// silently evaluates one slice only, and a pinned output path
			// makes concurrent shard runs clobber one file.
			if spec.Shard.Count > 1 {
				log.Printf("note: %s pins shard %d/%d; override per process with -shard",
					*specOut, spec.Shard.Index, spec.Shard.Count)
			}
			if spec.Output.Path != "" {
				log.Printf("note: %s pins output %q; give each shard its own -out",
					*specOut, spec.Output.Path)
			}
			return
		}
		if spec.Shard.Count > 1 && spec.Output.Path != "" && !set["out"] {
			// Every shard of this spec writes the same file; concurrent
			// shards would truncate each other's rows.
			log.Printf("warning: shard %d/%d writes the spec's pinned output %q; give each shard its own -out",
				spec.Shard.Index, spec.Shard.Count, spec.Output.Path)
		}
		// SIGINT/SIGTERM cancel the run: cells stop dispatching, the staged
		// output file is discarded (never a truncated JSONL), and the
		// process exits with the conventional 130.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if *calibrate != "" {
			cal, err := sweep.Calibrate(ctx, spec)
			if err != nil {
				if errors.Is(err, context.Canceled) {
					log.Print("interrupted; no calibration file written")
					os.Exit(130)
				}
				log.Fatal(err)
			}
			if err := sweep.SaveCalibration(*calibrate, cal); err != nil {
				log.Fatal(err)
			}
			log.Printf("calibration written to %s (%.0f cells/s baseline, %d cluster points)",
				*calibrate, cal.CellsPerSec, len(cal.Clusters))
			return
		}
		if *coordinate > 0 {
			err = runCoordinated(ctx, spec, coordinatorCLI{
				shards:         *coordinate,
				dir:            *coordDir,
				launch:         *coordLaunch,
				attempts:       *coordAttempts,
				straggler:      *coordStraggler,
				backoff:        *coordBackoff,
				seed:           *coordSeed,
				parallel:       *coordParallel,
				balance:        *coordBalance,
				steal:          *coordSteal,
				calibration:    *coordCalibration,
				poolWorkers:    *poolWorkers,
				poolCapacity:   *poolCapacity,
				poolSlots:      *poolSlots,
				poolStale:      *poolStale,
				poolHeartbeat:  *poolHeartbeat,
				poolQuarantine: *poolQuarantine,
				poolBackoff:    *poolBackoff,
			})
		} else {
			// A scripted fault plan (armed via IVLIW_FAULT_PLAN, inherited
			// from the coordinator) may make this worker crash, hang or
			// wedge here — or corrupt its committed output afterwards.
			plan, ferr := fault.FromEnv()
			if ferr != nil {
				log.Fatal(ferr)
			}
			ev := armFault(ctx, plan, spec)
			err = runSweep(ctx, spec)
			if err == nil && ev != nil && ev.Op == fault.CorruptOutput {
				corruptOutput(spec.Output.Path)
			}
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				// File outputs are all-or-nothing (staged, never renamed on
				// cancel); a stdout stream necessarily keeps the rows
				// already written, so only claim the stronger guarantee
				// when it actually held.
				if spec.Output.Path != "" || *coordinate > 0 {
					log.Print("interrupted; no partial output file written")
				} else {
					log.Print("interrupted")
				}
				os.Exit(130)
			}
			log.Fatal(err)
		}
		return
	}

	// The -exp experiments deliberately keep the default signal semantics
	// (SIGINT kills the process outright): they stream human-readable text
	// to stdout with no staged files to protect, so the sweep path's
	// cancel-and-discard machinery has nothing to save here.
	//
	// They also ignore the sweep-only flags; silently accepting them (e.g.
	// -shard on three hosts triplicating work, or -compile-cache 0
	// "disabling" a cache the figure drivers never consult) would
	// misconfigure without a word, so reject the combination like the
	// -spec/-sweep-* one.
	for _, name := range sortedNames(set) {
		sweepOnly := name == "shard" || name == "claim" || name == "calibrate" ||
			name == "artifact-dir" || name == "out" ||
			name == "compile-cache" || name == "heartbeat" || name == "heartbeat-interval" ||
			name == "sim-batch" ||
			strings.HasPrefix(name, "sweep-") ||
			strings.HasPrefix(name, "coordinate") || strings.HasPrefix(name, "pool-")
		if sweepOnly {
			usageErr("-%s only applies to sweeps (add -sweep or -spec)", name)
		}
	}

	runners := map[string]func() error{
		"table1": func() error {
			fmt.Println("Table 1: benchmarks and inputs")
			fmt.Println()
			fmt.Print(experiments.Table1())
			return nil
		},
		"table2": func() error {
			fmt.Println("Table 2: configuration parameters")
			fmt.Println()
			fmt.Print(experiments.Table2())
			return nil
		},
		"fig4":      fig4,
		"fig5":      fig5,
		"fig6":      fig6,
		"fig7":      fig7,
		"fig8":      fig8,
		"headlines": headlines,
	}
	order := []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "headlines"}

	name := strings.ToLower(*exp)
	if name == "all" {
		for _, n := range order {
			if err := runners[n](); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
		return
	}
	r, ok := runners[name]
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	if err := r(); err != nil {
		log.Fatal(err)
	}
}

func fig4() error {
	rows, err := experiments.Figure4(context.Background())
	if err != nil {
		return err
	}
	fmt.Println("Figure 4: memory access classification under IPBC")
	fmt.Println("bars: (i) no-unroll+align (ii) OUF,no-align (iii) OUF+align (iv) OUF+align,no-chains")
	fmt.Println("columns: local hits / remote hits / local misses / remote misses / combined")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-11s", r.Bench)
		for _, b := range r.Bars {
			s := b.Shares
			fmt.Printf("  | %4.2f %4.2f %4.2f %4.2f %4.2f", s[0], s[1], s[2], s[3], s[4])
		}
		fmt.Println()
	}
	return nil
}

func fig5() error {
	rows, err := experiments.Figure5(context.Background())
	if err != nil {
		return err
	}
	fmt.Println("Figure 5: classification of accesses that generate stall time (remote-hit stall shares)")
	fmt.Println("columns: more-than-one-cluster / unclear-preferred / not-in-preferred / granularity")
	fmt.Println("(factors are not mutually exclusive; shares may sum above 1)")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-11s IBC  %4.2f %4.2f %4.2f %4.2f   IPBC %4.2f %4.2f %4.2f %4.2f\n",
			r.Bench,
			r.IBC[0], r.IBC[1], r.IBC[2], r.IBC[3],
			r.IPBC[0], r.IPBC[1], r.IPBC[2], r.IPBC[3])
	}
	return nil
}

func fig6() error {
	rows, err := experiments.Figure6(context.Background())
	if err != nil {
		return err
	}
	fmt.Println("Figure 6: stall time by access type, normalized to IBC without Attraction Buffers")
	fmt.Println("bars: IBC / IBC+AB / IPBC / IPBC+AB")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-11s", r.Bench)
		for _, b := range r.Bars {
			fmt.Printf("  %s=%.2f", b.Variant, b.Normalized)
		}
		fmt.Println()
	}
	return nil
}

func fig7() error {
	rows, err := experiments.Figure7(context.Background())
	if err != nil {
		return err
	}
	fmt.Println("Figure 7: workload balance under IPBC (0.25 = perfect, 1 = fully unbalanced)")
	fmt.Println()
	fmt.Printf("%-11s %-10s %-10s %s\n", "benchmark", "no-unroll", "OUF", "OUF,no-chains")
	for _, r := range rows {
		fmt.Printf("%-11s %-10.2f %-10.2f %.2f\n", r.Bench, r.NoUnroll, r.OUF, r.OUFNoChains)
	}
	return nil
}

func fig8() error {
	rows, err := experiments.Figure8(context.Background())
	if err != nil {
		return err
	}
	fmt.Println("Figure 8: cycle counts normalized to a unified cache with 1-cycle latency")
	fmt.Println("bars: interleaved IPBC+AB / interleaved IBC+AB / multiVLIW / Unified(L=5); (s ...) = stall part")
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-11s", r.Bench)
		for _, b := range r.Bars {
			fmt.Printf("  %s=%.3f(s%.3f)", b.Variant, b.Compute+b.Stall, b.Stall)
		}
		fmt.Println()
	}
	return nil
}

func headlines() error {
	fig4, err := experiments.Figure4(context.Background())
	if err != nil {
		return err
	}
	fig6, err := experiments.Figure6(context.Background())
	if err != nil {
		return err
	}
	fig8, err := experiments.Figure8(context.Background())
	if err != nil {
		return err
	}
	h := experiments.ComputeHeadlines(fig4, fig6, fig8)
	fmt.Println("Headline numbers (paper value in parentheses):")
	fmt.Printf("  local-hit-ratio gain from variable alignment:  %+.1f points (paper: ~+20%%)\n", 100*h.LocalHitGainAlignment)
	fmt.Printf("  local-hit-ratio gain from OUF unrolling:       %+.1f points (paper: ~+27%%)\n", 100*h.LocalHitGainUnrolling)
	fmt.Printf("  stall reduction from Attraction Buffers (IBC):  %.1f%% (paper: 34%%)\n", 100*h.StallReductionIBC)
	fmt.Printf("  stall reduction from Attraction Buffers (IPBC): %.1f%% (paper: 29%%)\n", 100*h.StallReductionIPBC)
	fmt.Printf("  speedup over Unified(L=5), IBC+AB:              %+.1f%% (paper: +10%%)\n", 100*h.SpeedupIBC)
	fmt.Printf("  speedup over Unified(L=5), IPBC+AB:             %+.1f%% (paper: +5%%)\n", 100*h.SpeedupIPBC)
	fmt.Printf("  interleaved(IBC+AB) vs multiVLIW cycle ratio:   %+.1f%% (paper: ~+7%% degradation)\n", 100*h.VsMultiVLIW)
	return nil
}

// sweepOptions carries the parsed sweep flag values.
type sweepOptions struct {
	clusters, interleave, cacheKB, assoc, ab, bus, memLat string
	fus, regBus, mshr, abK                                string
	bench                                                 string
	synth                                                 int
	seed                                                  uint64
	heuristic, unroll                                     string
	workers                                               int
	simBatch                                              int
	compileCache                                          int
	cacheSet                                              bool // -compile-cache explicitly set
	artifactDir                                           string
	shard                                                 sweep.Shard
	out                                                   string
}

// sortedNames returns the explicitly-set flag names in a fixed order, so
// conflict errors are reproducible when several offending flags are set.
func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// memoryCapacity maps the -compile-cache flag (0 = disabled) onto the spec
// encoding (0 = default capacity, negative = disabled).
func memoryCapacity(flag int) int {
	if flag == 0 {
		return -1
	}
	return flag
}

// specFromFlags translates the legacy flag soup into the declarative spec
// the public sweep package runs — the same mapping -spec-out serializes, so
// a flag invocation and its captured spec file are byte-identical runs.
func specFromFlags(o sweepOptions) (sweep.Spec, error) {
	spec := sweep.Spec{
		Workers:  o.workers,
		SimBatch: o.simBatch,
		Shard:    o.shard,
		Store:    sweep.Store{Dir: o.artifactDir},
		Output:   sweep.Output{Path: o.out},
	}
	if o.cacheSet {
		// Only an explicit -compile-cache is baked into the spec; leaving
		// Memory at 0 keeps captured files tracking the library default.
		spec.Store.Memory = memoryCapacity(o.compileCache)
	}
	for _, ax := range []struct {
		name     string
		csv      string
		dst      *[]int
		optional bool
	}{
		{"-sweep-clusters", o.clusters, &spec.Grid.Clusters, false},
		{"-sweep-interleave", o.interleave, &spec.Grid.Interleave, false},
		{"-sweep-cache-kb", o.cacheKB, &spec.Grid.CacheBytes, false},
		{"-sweep-assoc", o.assoc, &spec.Grid.Assoc, false},
		{"-sweep-ab", o.ab, &spec.Grid.ABEntries, false},
		{"-sweep-bus", o.bus, &spec.Grid.BusCycleRatio, false},
		{"-sweep-mem-lat", o.memLat, &spec.Grid.NextLevelLatency, false},
		{"-sweep-reg-bus", o.regBus, &spec.Grid.RegBuses, true},
		{"-sweep-mshr", o.mshr, &spec.Grid.MSHRs, true},
		{"-sweep-ab-k", o.abK, &spec.Grid.ABHintK, true},
	} {
		if ax.optional && strings.TrimSpace(ax.csv) == "" {
			continue // empty axis: keep the Table 2 value
		}
		vs, err := parseIntList(ax.csv)
		if err != nil {
			return sweep.Spec{}, fmt.Errorf("%s: %w", ax.name, err)
		}
		*ax.dst = vs
	}
	for i, kb := range spec.Grid.CacheBytes {
		spec.Grid.CacheBytes[i] = kb * 1024
	}
	var err error
	if spec.Grid.FUs, err = parseFUList(o.fus); err != nil {
		return sweep.Spec{}, fmt.Errorf("-sweep-fus: %w", err)
	}
	spec.Compile = sweep.Compile{Heuristic: o.heuristic, Unroll: o.unroll}

	switch strings.ToLower(strings.TrimSpace(o.bench)) {
	case "all":
		spec.Workloads.Bench = []string{"all"}
	case "", "none":
	default:
		for _, name := range strings.Split(o.bench, ",") {
			spec.Workloads.Bench = append(spec.Workloads.Bench, strings.TrimSpace(name))
		}
	}
	if o.synth < 0 {
		return sweep.Spec{}, fmt.Errorf("-sweep-synth must be >= 0, got %d", o.synth)
	}
	if o.synth > 0 {
		spec.Workloads.SynthCount = o.synth
		spec.Workloads.SynthSeed = o.seed
	}
	return spec, nil
}

// parseClaim parses the -claim lo:hi syntax ("" = no claim). The range is
// half-open, must not be inverted, and must be non-empty: claiming nothing
// is a flag mistake, not a request for an empty output.
func parseClaim(s string) (lo, hi int, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, 0, nil
	}
	l, h, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-claim must be lo:hi (e.g. 12:16), got %q", s)
	}
	if lo, err = strconv.Atoi(strings.TrimSpace(l)); err != nil {
		return 0, 0, fmt.Errorf("-claim lo %q: want an integer", l)
	}
	if hi, err = strconv.Atoi(strings.TrimSpace(h)); err != nil {
		return 0, 0, fmt.Errorf("-claim hi %q: want an integer", h)
	}
	if lo < 0 || hi <= lo {
		return 0, 0, fmt.Errorf("-claim wants 0 <= lo < hi, got %d:%d", lo, hi)
	}
	return lo, hi, nil
}

// parseShard parses the -shard i/n syntax into a shard ("" = unsharded).
func parseShard(s string) (sweep.Shard, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return sweep.Shard{}, nil
	}
	idx, count, ok := strings.Cut(s, "/")
	if !ok {
		return sweep.Shard{}, fmt.Errorf("-shard must be i/n (e.g. 0/3), got %q", s)
	}
	i, err := strconv.Atoi(strings.TrimSpace(idx))
	if err != nil {
		return sweep.Shard{}, fmt.Errorf("-shard index %q: want an integer", idx)
	}
	n, err := strconv.Atoi(strings.TrimSpace(count))
	if err != nil {
		return sweep.Shard{}, fmt.Errorf("-shard count %q: want an integer", count)
	}
	if n < 1 {
		return sweep.Shard{}, fmt.Errorf("-shard count must be >= 1, got %d", n)
	}
	if i < 0 || i >= n {
		return sweep.Shard{}, fmt.Errorf("-shard index must be in [0, %d), got %d", n, i)
	}
	return sweep.Shard{Index: i, Count: n}, nil
}

// runSweep executes the spec, streaming its JSON lines to the spec's output
// path (stdout by default): each row is encoded as its in-order cell
// completes, with distinct compile keys compiled once into the artifact
// store. Store effectiveness is reported on stderr; the row stream itself
// is byte-identical for any store configuration and worker count.
func runSweep(ctx context.Context, spec sweep.Spec) error {
	st, err := sweep.Run(ctx, spec, nil) // nil sink: buffered JSONL to Output.Path/stdout
	if err != nil {
		return err
	}
	log.Printf("compile cache: %d hits, %d misses, %d evictions", st.MemHits, st.MemMisses, st.MemEvictions)
	if st.SimBatches > 0 {
		log.Printf("sim batches: %d cells in %d batches (mean lane width %.2f)",
			st.SimCells, st.SimBatches, float64(st.SimCells)/float64(st.SimBatches))
	}
	if spec.Store.Dir != "" {
		log.Printf("artifact store %s: %d hits, %d compiles, %d writes, %d write errors",
			spec.Store.Dir, st.DiskHits, st.DiskMisses, st.DiskWrites, st.DiskWriteErrors)
	}
	return nil
}

// coordinatorCLI carries the parsed -coordinate-* and -pool-* flag values.
type coordinatorCLI struct {
	shards      int
	dir         string
	launch      string
	attempts    int
	straggler   time.Duration
	backoff     time.Duration
	seed        uint64
	parallel    int
	balance     string
	steal       int
	calibration string

	poolWorkers    int
	poolCapacity   int
	poolSlots      int
	poolStale      time.Duration
	poolHeartbeat  time.Duration
	poolQuarantine int
	poolBackoff    time.Duration
}

// runCoordinated expands the spec into o.shards shard runs, executes them
// through the selected launcher with retry/straggler handling, and stitches
// the shard outputs into the spec's output path (stdout by default) —
// byte-identical to the unsharded run. Reusing -coordinate-dir resumes
// completed shards from the manifest after a kill.
func runCoordinated(ctx context.Context, spec sweep.Spec, o coordinatorCLI) error {
	var launcher sweep.Launcher
	var pool *sweep.Pool
	switch o.launch {
	case "inproc":
		launcher = sweep.InProcess{}
	case "pool":
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("resolving own binary for the pool launcher: %w", err)
		}
		// The pool consumes dead-worker events itself; shard-scoped events
		// fire inside the worker subprocesses, which inherit the env.
		plan, err := fault.FromEnv()
		if err != nil {
			return err
		}
		var workers []sweep.Worker
		for i := 0; i < o.poolWorkers; i++ {
			workers = append(workers, sweep.Worker{
				Name:     fmt.Sprintf("w%d", i),
				Command:  []string{exe},
				Capacity: o.poolCapacity,
				Slots:    o.poolSlots,
			})
		}
		pool = &sweep.Pool{
			Workers:           workers,
			StaleAfter:        o.poolStale,
			HeartbeatInterval: o.poolHeartbeat,
			QuarantineAfter:   o.poolQuarantine,
			QuarantineBackoff: o.poolBackoff,
			Seed:              o.seed,
			Fault:             plan,
			Stderr:            os.Stderr,
			Log:               log.Printf,
		}
		launcher = pool
	default: // "exec", validated in main
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("resolving own binary for the exec launcher: %w", err)
		}
		launcher = sweep.Exec{Command: []string{exe}, Stderr: os.Stderr}
	}
	st, err := sweep.Coordinate(ctx, spec, sweep.CoordinatorOptions{
		Shards:         o.shards,
		Launcher:       launcher,
		Dir:            o.dir,
		MaxAttempts:    o.attempts,
		StragglerAfter: o.straggler,
		RetryBackoff:   o.backoff,
		Seed:           o.seed,
		Parallel:       o.parallel,
		Balance:        o.balance,
		Steal:          o.steal,
		Calibration:    o.calibration,
		Log:            log.Printf,
	})
	if pool != nil {
		ps := pool.Stats()
		log.Printf("pool: %d launches, %d stale kills, %d worker deaths, %d checksum failures, %d quarantines (%d readmissions)",
			ps.Launches, ps.StaleKills, ps.WorkerDeaths, ps.ChecksumFailures, ps.Quarantines, ps.Readmissions)
	}
	if err != nil {
		return err
	}
	log.Printf("coordinator: %d shards (%d resumed), %d launches (%d retries, %d stragglers), %d rows stitched",
		st.Shards, st.Resumed, st.Launches, st.Retries, st.Stragglers, st.Rows)
	if st.Tasks != st.Shards || st.Empty > 0 {
		log.Printf("coordinator: grid cut into %d range tasks (%d empty, committed without launching)",
			st.Tasks, st.Empty)
	}
	if st.Launches > 0 {
		log.Printf("coordinator: slowest task %d: %.2fs (%.1f cells/s)",
			st.SlowestTask, st.SlowestWall.Seconds(), st.SlowestCellsPerSec)
	}
	return nil
}

// armFault applies this worker process's shard-scoped fault event, if any:
// crash, hang and stale-heartbeat never return; corrupt-output is returned
// for the caller to apply after the sweep commits. Unsharded runs (the
// reference the faulted output is compared against) never match.
func armFault(ctx context.Context, plan *fault.Plan, spec sweep.Spec) *fault.Event {
	if spec.Shard.Count == 0 {
		return nil
	}
	attempt := fault.AttemptFromEnv()
	ev := plan.ForAttempt(spec.Shard.Index, attempt)
	if ev == nil {
		return nil
	}
	switch ev.Op {
	case fault.Crash:
		log.Fatalf("fault: crash (shard %d, attempt %d)", spec.Shard.Index, attempt)
	case fault.Hang:
		log.Printf("fault: hang (shard %d, attempt %d)", spec.Shard.Index, attempt)
		<-ctx.Done()
		os.Exit(130)
	case fault.StaleHeartbeat:
		// One beat, then wedge: the process stays alive and beating-silent,
		// exactly the failure a stale-heartbeat monitor exists to catch.
		log.Printf("fault: stale-heartbeat (shard %d, attempt %d)", spec.Shard.Index, attempt)
		if spec.Heartbeat.Path != "" {
			if err := sweep.WriteBeat(spec.Heartbeat.Path, sweep.Beat{
				Shard: spec.Shard.Index, Seq: 1, Status: sweep.BeatRunning,
			}); err != nil {
				log.Fatal(err)
			}
		}
		<-ctx.Done()
		os.Exit(130)
	}
	return ev
}

// corruptOutput flips one byte of the committed output file — scripted disk
// corruption between a worker's commit and the coordinator's stitch, caught
// by the pool's checksum verification.
func corruptOutput(path string) {
	if path == "" {
		log.Fatal("fault: corrupt-output needs a file output")
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		log.Fatalf("fault: corrupt-output %s: unreadable or empty (%v)", path, err)
	}
	data[len(data)/2] ^= 0x40
	//ivliw:nonatomic fault injection: deliberately rewrites a committed file in place
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatalf("fault: corrupt-output: %v", err)
	}
	log.Printf("fault: corrupt-output (flipped a byte of %s)", path)
}

// parseFUList parses a comma-separated list of int:fp:mem functional-unit
// triples ("1:1:1,2:1:2") into grid entries. An empty string means "Table 2
// mix only".
func parseFUList(csv string) ([][]int, error) {
	csv = strings.TrimSpace(csv)
	if csv == "" {
		return nil, nil
	}
	var out [][]int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		parts := strings.Split(f, ":")
		if len(parts) != int(arch.NumFUKinds) {
			return nil, fmt.Errorf("bad triple %q: want int:fp:mem, e.g. 1:1:1", f)
		}
		fu := make([]int, arch.NumFUKinds)
		for i, kind := range []arch.FUKind{arch.FUInt, arch.FUFP, arch.FUMem} {
			v, err := strconv.Atoi(strings.TrimSpace(parts[i]))
			if err != nil {
				return nil, fmt.Errorf("bad triple %q: %v", f, err)
			}
			fu[kind] = v
		}
		out = append(out, fu)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseIntList parses a comma-separated list of integers.
func parseIntList(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: want a comma-separated integer list", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
