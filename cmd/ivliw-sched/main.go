// Command ivliw-sched compiles one loop of the synthetic Mediabench-like
// suite with the paper's scheduling pipeline and prints the resulting
// modulo schedule: the latency assignment trace, the swing order, the
// per-cluster placement, and the inserted inter-cluster copies.
//
// Usage:
//
//	ivliw-sched [-bench gsmdec] [-loop 0] [-heuristic IPBC|IBC|BASE]
//	            [-unroll selective|none|xN|OUF] [-org interleaved|multivliw|unified]
//	            [-no-chains] [-no-align]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"ivliw/internal/addrspace"
	"ivliw/internal/arch"
	"ivliw/internal/core"
	"ivliw/internal/sched"
	"ivliw/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ivliw-sched: ")
	var (
		benchName = flag.String("bench", "gsmdec", "benchmark name (see ivliw-bench -exp table1)")
		loopIdx   = flag.Int("loop", 0, "loop index within the benchmark")
		heuristic = flag.String("heuristic", "IPBC", "cluster heuristic: BASE, IBC or IPBC")
		unrollStr = flag.String("unroll", "selective", "unrolling: none, xN, OUF or selective")
		orgStr    = flag.String("org", "interleaved", "cache organization: interleaved, multivliw or unified")
		noChains  = flag.Bool("no-chains", false, "disable memory dependent chains (ablation)")
		noAlign   = flag.Bool("no-align", false, "disable variable alignment")
	)
	flag.Parse()

	spec, ok := workload.ByName(*benchName)
	if !ok {
		log.Fatalf("unknown benchmark %q", *benchName)
	}
	if *loopIdx < 0 || *loopIdx >= len(spec.Loops) {
		log.Fatalf("benchmark %s has loops 0..%d", spec.Name, len(spec.Loops)-1)
	}
	cfg, err := parseOrg(*orgStr)
	if err != nil {
		log.Fatal(err)
	}
	h, err := parseHeuristic(*heuristic)
	if err != nil {
		log.Fatal(err)
	}
	um, err := parseUnroll(*unrollStr)
	if err != nil {
		log.Fatal(err)
	}

	loop := spec.Loops[*loopIdx].Loop
	profDS := addrspace.Dataset{Seed: spec.ProfileSeed, Aligned: !*noAlign}
	profLay := addrspace.NewLayout(spec.AllLoops(), cfg, profDS)

	c, err := core.Compile(loop, cfg, profLay, profDS, core.Options{
		Heuristic: h, Unroll: um, NoChains: *noChains,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("loop %s  (%s cache, %v, %v unrolling)\n", loop.Name, cfg.Org, h, um)
	fmt.Printf("unroll factor %d   II %d (MII %d)   stages %d   copies %d   balance %.2f\n\n",
		c.UnrollFactor, c.Schedule.II, c.Schedule.MII, c.Schedule.SC,
		len(c.Schedule.Copies), c.Schedule.WorkloadBalance(cfg.Clusters))

	if len(c.Latency.Steps) > 0 {
		fmt.Println("latency assignment steps (target MII", c.Latency.TargetMII, "):")
		for _, s := range c.Latency.Steps {
			if s.Slack {
				fmt.Printf("  %-14s %2d -> %2d  (slack re-absorption)\n",
					c.Loop.Instrs[s.Instr].Name, s.From, s.To)
				continue
			}
			fmt.Printf("  %-14s %2d -> %2d  ∆II=%-3d ∆stall=%-6.2f B=%.2f\n",
				c.Loop.Instrs[s.Instr].Name, s.From, s.To, s.DeltaII, s.DeltaStall, s.B)
		}
		fmt.Println()
	}

	fmt.Println("schedule (cycle, cluster):")
	ids := make([]int, len(c.Loop.Instrs))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		pa, pb := c.Schedule.Place[ids[a]], c.Schedule.Place[ids[b]]
		if pa.Cycle != pb.Cycle {
			return pa.Cycle < pb.Cycle
		}
		return ids[a] < ids[b]
	})
	for _, id := range ids {
		in := c.Loop.Instrs[id]
		p := c.Schedule.Place[id]
		extra := ""
		if in.IsMem() {
			st := c.Profile.Stats(id)
			extra = fmt.Sprintf("  lat=%-2d hit=%.2f pref=c%d", c.Schedule.Assigned[id],
				st.HitRate(), c.Preferred[id])
			if ch := c.Chains.ChainOf(id); ch >= 0 && c.Chains.Len(id) > 1 {
				extra += fmt.Sprintf(" chain=%d", ch)
			}
		}
		fmt.Printf("  t=%-4d c%-2d %-6s %-14s%s\n", p.Cycle, p.Cluster, in.Class, in.Name, extra)
	}
	if len(c.Schedule.Copies) > 0 {
		fmt.Println("\ninter-cluster copies (bus transfers):")
		for _, cp := range c.Schedule.Copies {
			fmt.Printf("  t=%-4d %s(c%d) -> %s(c%d)\n", cp.Cycle,
				c.Loop.Instrs[cp.From].Name, cp.FromCluster,
				c.Loop.Instrs[cp.To].Name, cp.ToCluster)
		}
	}
}

func parseOrg(s string) (arch.Config, error) {
	switch strings.ToLower(s) {
	case "interleaved":
		return arch.Default(), nil
	case "multivliw":
		return arch.MultiVLIWConfig(), nil
	case "unified":
		return arch.UnifiedConfig(5), nil
	}
	return arch.Config{}, fmt.Errorf("unknown organization %q", s)
}

func parseHeuristic(s string) (sched.Heuristic, error) {
	switch strings.ToUpper(s) {
	case "BASE":
		return sched.Base, nil
	case "IBC":
		return sched.IBC, nil
	case "IPBC":
		return sched.IPBC, nil
	}
	return 0, fmt.Errorf("unknown heuristic %q", s)
}

func parseUnroll(s string) (core.UnrollMode, error) {
	switch strings.ToLower(s) {
	case "none", "no", "1":
		return core.NoUnroll, nil
	case "xn", "n":
		return core.UnrollxN, nil
	case "ouf":
		return core.OUFUnroll, nil
	case "selective":
		return core.Selective, nil
	}
	return 0, fmt.Errorf("unknown unroll mode %q", s)
}
