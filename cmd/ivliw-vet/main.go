// Command ivliw-vet runs the module's custom static-analysis pass
// (internal/lintcheck): five analyzers that prove the repo's determinism
// and durability invariants — atomicwrite, strictjson, determinism,
// ctxplumb and nopanic — plus validation of the //ivliw: escape
// annotations themselves.
//
// Usage:
//
//	ivliw-vet [-dir DIR] [-json] [patterns ...]
//
// Patterns default to ./... and are resolved by `go list` in -dir
// (default: the current directory). Output is one line per finding:
//
//	file:line: [analyzer] message
//
// with file paths relative to the analyzed module's root, sorted by file,
// line, column, analyzer and message — byte-stable across runs, like
// everything else in this module. -json emits the same findings as a JSON
// array of {file, line, col, analyzer, message} objects.
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ivliw/internal/lintcheck"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	dir := flag.String("dir", ".", "module directory to analyze")
	flag.Parse()

	mod, err := lintcheck.Load(*dir, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivliw-vet:", err)
		return 2
	}
	diags := lintcheck.Run(mod, lintcheck.DefaultConfig(mod.Path))

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lintcheck.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "ivliw-vet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "ivliw-vet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
